package cluster

import (
	"time"

	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

// Dispatcher routes an arriving request to one of the cluster's engines.
// Pick is called once per admitted request, in arrival order, with the
// SignalBoard's per-engine signals — snapshots that may be stale by up to
// the run's SignalInterval (exact when the interval is 0). Implementations
// must be deterministic: same signals, same request, same answer. The
// returned index selects engines[i]; an out-of-range index fails the run.
type Dispatcher interface {
	// Name identifies the policy in results.
	Name() string
	// Pick selects the engine for the request arriving at now.
	Pick(sig []EngineSignal, r *workload.Request, now time.Duration) int
}

// loadProvider is implemented by dispatchers (and admission policies)
// that need the SignalBoard to maintain a Backlog signal: the board is
// built with the first load function the run's policies provide.
type loadProvider interface {
	LoadFunc() func(*sched.Task) time.Duration
}

// curveProvider is the optional companion of loadProvider: a policy that
// can also serve its estimate as a per-task remaining curve
// (sched.Options.BacklogCurve) lets the engines' incremental backlog
// accounting re-estimate after each executed layer by slice index
// instead of a LUT lookup. The run takes the curve from the same policy
// its load estimate came from, so the two can never disagree about what
// a request costs; a provider without one (or returning nil) leaves the
// engines on per-event estimator calls — same numbers, more work.
type curveProvider interface {
	CurveFunc() func(*sched.Task) []time.Duration
}

// resettable is implemented by stateful dispatchers; cluster.Run resets
// them at the start of every run so an instance reused across runs cannot
// leak state between them.
type resettable interface {
	Reset()
}

// RoundRobin cycles through engines in index order, ignoring load: the
// baseline dispatch every serving stack starts with.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin dispatcher starting at engine 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Dispatcher.
func (*RoundRobin) Name() string { return "rr" }

// Reset restarts the rotation at engine 0 (called by cluster.Run, so a
// dispatcher instance reused across two runs starts both identically).
func (d *RoundRobin) Reset() { d.next = 0 }

// Pick implements Dispatcher. The counter wraps inside [0, len(sig)), so
// it can neither overflow nor go out of range when the engine count
// changes between runs. Engines marked Down are skipped deterministically:
// the rotation advances from the cursor to the first in-service engine
// and resumes after it, so the relative order among live engines is
// preserved and a recovered engine slips back into its slot. With every
// engine marked down (or none marked at all) the cursor's own pick
// stands — on a fully healthy cluster this is exactly the pre-liveness
// rotation, and on a fully dead one the cluster layer, not the
// dispatcher, decides the request's fate.
func (d *RoundRobin) Pick(sig []EngineSignal, _ *workload.Request, _ time.Duration) int {
	if d.next >= len(sig) {
		d.next = 0
	}
	for k := 0; k < len(sig); k++ {
		i := (d.next + k) % len(sig)
		if sig[i].Down {
			continue
		}
		d.next = (i + 1) % len(sig)
		return i
	}
	i := d.next
	d.next = (d.next + 1) % len(sig)
	return i
}

// JSQ is Join-the-Shortest-Queue: the engine with the fewest outstanding
// requests, capacity-normalized (a queue of n on a half-speed engine
// counts like 2n on a reference one), ties to the lowest index. Load-aware
// but size-blind — a queue of three MobileNets counts the same as a queue
// of three BERTs.
type JSQ struct{}

// NewJSQ returns the join-the-shortest-queue dispatcher.
func NewJSQ() *JSQ { return &JSQ{} }

// Name implements Dispatcher.
func (*JSQ) Name() string { return "jsq" }

// Pick implements Dispatcher. Down engines are excluded from the
// min-scan (ties still break to the lowest in-service index); with every
// engine down the scan falls back to ignoring liveness, leaving the
// all-dead case to the cluster layer.
func (*JSQ) Pick(sig []EngineSignal, _ *workload.Request, _ time.Duration) int {
	best := -1
	var bestLen float64
	for i := range sig {
		if sig[i].Down {
			continue
		}
		if n := sig[i].NormOutstanding(); best < 0 || n < bestLen {
			best, bestLen = i, n
		}
	}
	if best < 0 {
		best, bestLen = 0, sig[0].NormOutstanding()
		for i := 1; i < len(sig); i++ {
			if n := sig[i].NormOutstanding(); n < bestLen {
				best, bestLen = i, n
			}
		}
	}
	return best
}

// LeastLoad routes to the engine with the smallest predicted outstanding
// work: the sum of a per-task remaining-latency estimate over every
// queued request, capacity-normalized to the engine's drain time. With a
// sparsity-aware estimate (SparsityAwareLoad) this is the dispatch-layer
// analogue of Dysta's scheduling insight — the same architecture differs
// up to ~40% in effective work across sparsity patterns (paper Fig. 4),
// so queue length alone misjudges backlog.
type LeastLoad struct {
	name  string
	load  func(*sched.Task) time.Duration
	curve func(*sched.Task) []time.Duration
}

// NewLeastLoad returns a least-predicted-load dispatcher using the given
// per-task remaining-work estimate.
func NewLeastLoad(name string, load func(*sched.Task) time.Duration) *LeastLoad {
	return &LeastLoad{name: name, load: load}
}

// WithCurve attaches the curve form of the dispatcher's estimate
// (typically SparsityAwareCurve beside SparsityAwareLoad) and returns the
// dispatcher for chaining: the engines then maintain their incremental
// backlog sums by slice index. The curve must agree with the load
// estimate; the engines verify the pair at every injection.
func (d *LeastLoad) WithCurve(curve func(*sched.Task) []time.Duration) *LeastLoad {
	d.curve = curve
	return d
}

// Name implements Dispatcher.
func (d *LeastLoad) Name() string { return d.name }

// LoadFunc exposes the estimate to the SignalBoard (loadProvider).
func (d *LeastLoad) LoadFunc() func(*sched.Task) time.Duration { return d.load }

// CurveFunc exposes the estimate's curve form (curveProvider).
func (d *LeastLoad) CurveFunc() func(*sched.Task) []time.Duration { return d.curve }

// Pick implements Dispatcher. Down engines are excluded exactly as in
// JSQ.Pick: out of the min-scan, lowest in-service index on ties, full
// scan as the all-dead fallback.
func (d *LeastLoad) Pick(sig []EngineSignal, _ *workload.Request, _ time.Duration) int {
	best := -1
	var bestLoad float64
	for i := range sig {
		if sig[i].Down {
			continue
		}
		if w := sig[i].NormBacklog(); best < 0 || w < bestLoad {
			best, bestLoad = i, w
		}
	}
	if best < 0 {
		best, bestLoad = 0, sig[0].NormBacklog()
		for i := 1; i < len(sig); i++ {
			if w := sig[i].NormBacklog(); w < bestLoad {
				best, bestLoad = i, w
			}
		}
	}
	return best
}

// BlindLoad estimates a task's remaining work from the pattern-blind
// profiling Estimator — the load signal a sparsity-unaware serving stack
// has available. Tasks whose model was never profiled fall back to the
// profiling population's mean isolated latency rather than panicking (the
// scheduler-facing Estimator accessors run only after workload
// validation; a router sees whatever traffic shows up).
func BlindLoad(est *sched.Estimator) func(*sched.Task) time.Duration {
	return func(t *sched.Task) time.Duration {
		if st := est.ModelStats(t.Key.Model); st != nil {
			return st.AvgRemaining(t.NextLayer)
		}
		return est.MeanIsolated()
	}
}

// SparsityAwareLoad estimates a task's remaining work from the Dysta LUT,
// keyed by the model-pattern pair (paper §5.1): the static-sparsity-aware
// estimate the hardware profiling stage provides. A key the LUT never
// profiled falls back to the pattern-blind estimate — never to zero: a
// zero estimate would make LeastLoad treat exactly the unprofiled traffic
// a production router must handle as free work and dump all of it onto
// one engine.
func SparsityAwareLoad(lut *trace.StatsSet, est *sched.Estimator) func(*sched.Task) time.Duration {
	blind := BlindLoad(est)
	return func(t *sched.Task) time.Duration {
		if st := lut.Lookup(t.Key); st != nil {
			return st.AvgRemaining(t.NextLayer)
		}
		return blind(t)
	}
}

// BlindCurve is the curve form of BlindLoad: the per-model remaining
// curve for profiled models, nil for unprofiled ones. The nil branch is
// exact, not a compromise — BlindLoad's MeanIsolated fallback is
// constant in NextLayer, so the engine's per-event estimator calls
// return the same value a curve would, just without the slice-index
// shortcut.
func BlindCurve(est *sched.Estimator) func(*sched.Task) []time.Duration {
	return func(t *sched.Task) []time.Duration {
		if st := est.ModelStats(t.Key.Model); st != nil {
			return st.RemainingCurve()
		}
		return nil
	}
}

// SparsityAwareCurve is the curve form of SparsityAwareLoad: the Dysta
// LUT's per-pattern remaining curve, falling back to the pattern-blind
// per-model curve, falling back to nil (per-event estimator calls) for
// traffic the profiling never saw — the same chain, resolved once per
// injection instead of once per event.
func SparsityAwareCurve(lut *trace.StatsSet, est *sched.Estimator) func(*sched.Task) []time.Duration {
	blind := BlindCurve(est)
	return func(t *sched.Task) []time.Duration {
		if st := lut.Lookup(t.Key); st != nil {
			return st.RemainingCurve()
		}
		return blind(t)
	}
}
