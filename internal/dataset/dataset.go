// Package dataset synthesizes the per-sample, per-layer dynamic sparsity
// streams that stand in for the paper's real datasets (ImageNet, ExDark,
// DarkFace, COCO for vision; SQuAD, GLUE for language — paper §3.1).
//
// The scheduler-visible signal of a dataset is exactly one vector per
// sample: the dynamic sparsity of each layer (ReLU activation sparsity for
// CNNs, pruned-attention sparsity for AttNNs). We generate those vectors
// from a single-latent-factor model:
//
//	s[l] = clamp(mean[l] + load[l]*(z + dark) + noise[l])
//
// where z ~ N(0,1) is the sample's informativeness (simple/dark inputs have
// more zeros), dark is a low-light mixture shift emulating the ExDark and
// DarkFace out-of-distribution inputs the paper adds (§2.3.1), and noise is
// small per-layer jitter. The construction reproduces the three statistics
// the paper measures of real data:
//
//   - per-layer sparsity spread (Fig. 3: most layers range 10-45%);
//   - network-sparsity relative range (Table 2: 15-28% depending on model);
//   - strong inter-layer Pearson correlation (Fig. 9: ~0.8-1.0), because
//     all layers share the latent factor.
//
// See DESIGN.md §2 for the substitution argument.
package dataset

import (
	"fmt"

	"sparsedysta/internal/models"
	"sparsedysta/internal/rng"
	"sparsedysta/internal/stats"
)

// Preset parameterizes the generative model for one (model, dataset) pair.
type Preset struct {
	// Name identifies the emulated dataset (for reports).
	Name string
	// LayerMeans is the mean dynamic sparsity of each layer.
	LayerMeans []float64
	// LayerLoads is each layer's loading on the shared latent factor.
	LayerLoads []float64
	// NoiseSD is the per-layer independent jitter.
	NoiseSD float64
	// DarkFraction is the probability a sample comes from the low-light
	// (out-of-distribution) mixture component; 0 for language datasets.
	DarkFraction float64
	// DarkShift is the latent shift of low-light samples (more zeros).
	DarkShift float64
	// Lo, Hi clamp the generated sparsity.
	Lo, Hi float64
}

// Validate reports whether the preset is internally consistent for the
// given model.
func (p *Preset) Validate(m *models.Model) error {
	if len(p.LayerMeans) != m.NumLayers() || len(p.LayerLoads) != m.NumLayers() {
		return fmt.Errorf("dataset: preset %q has %d/%d layer params for %d-layer model %s",
			p.Name, len(p.LayerMeans), len(p.LayerLoads), m.NumLayers(), m.Name)
	}
	if p.Lo >= p.Hi {
		return fmt.Errorf("dataset: preset %q clamp range [%v,%v) empty", p.Name, p.Lo, p.Hi)
	}
	return nil
}

// Sample is one input's dynamic sparsity trajectory.
type Sample struct {
	// Sparsity[l] is the dynamic sparsity of layer l in [0,1].
	Sparsity []float64
	// Dark reports whether the sample came from the low-light mixture.
	Dark bool
}

// NetworkSparsity returns the mean sparsity across layers, the paper's
// Table 2 quantity.
func (s Sample) NetworkSparsity() float64 { return stats.Mean(s.Sparsity) }

// Stream draws samples for one model under one preset. It is not safe for
// concurrent use; derive per-goroutine streams with independent seeds.
type Stream struct {
	model  *models.Model
	preset Preset
	r      *rng.Source
}

// NewStream returns a Stream for model m. The preset must match the
// model's layer count.
func NewStream(m *models.Model, preset Preset, seed uint64) (*Stream, error) {
	if err := preset.Validate(m); err != nil {
		return nil, err
	}
	return &Stream{model: m, preset: preset, r: rng.New(seed)}, nil
}

// MustStream is NewStream that panics on preset errors; for use with the
// package's own presets, which are correct by construction.
func MustStream(m *models.Model, preset Preset, seed uint64) *Stream {
	s, err := NewStream(m, preset, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Model returns the stream's model.
func (s *Stream) Model() *models.Model { return s.model }

// Preset returns the stream's preset.
func (s *Stream) Preset() Preset { return s.preset }

// Next draws the next sample.
func (s *Stream) Next() Sample {
	p := &s.preset
	z := s.r.Norm()
	dark := s.r.Bernoulli(p.DarkFraction)
	if dark {
		z += p.DarkShift
	}
	sp := make([]float64, len(p.LayerMeans))
	for l := range sp {
		if p.LayerMeans[l] == 0 && p.LayerLoads[l] == 0 {
			// A zero mean and zero loading marks a structurally dense
			// layer (e.g. the first convolution reading the raw image).
			continue
		}
		v := p.LayerMeans[l] + p.LayerLoads[l]*z + s.r.NormAt(0, p.NoiseSD)
		sp[l] = stats.Clamp(v, p.Lo, p.Hi)
	}
	return Sample{Sparsity: sp, Dark: dark}
}

// Draw returns n samples.
func (s *Stream) Draw(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// ChannelDensities expands a layer-level activation density into a
// per-input-channel density profile, used by the valid-MAC profiling of
// paper Fig. 4. Channel densities vary around the layer mean (spread is
// the standard deviation of the variation) and are clamped to [0,1].
func ChannelDensities(r *rng.Source, cin int, layerDensity, spread float64) []float64 {
	out := make([]float64, cin)
	for i := range out {
		out[i] = stats.Clamp(r.NormAt(layerDensity, spread), 0, 1)
	}
	return out
}

// wiggle returns a deterministic per-layer perturbation in [-1,1] derived
// from the model name and layer index, so that layer means differ in a
// stable, model-specific way without carrying tables of constants.
func wiggle(model string, layer int) float64 {
	h := uint64(1469598103934665603)
	for _, c := range model {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h = (h ^ uint64(layer)) * 1099511628211
	h ^= h >> 33
	return float64(h%2048)/1024 - 1
}

// cnnProfile holds the calibration constants for one CNN's activation
// sparsity, tuned to reproduce the paper's Table 2 relative ranges
// (GoogLeNet 28.3%, VGG-16 21.8%, InceptionV3 23.0%, ResNet-50 15.1%).
type cnnProfile struct {
	base, depthSlope, wiggleAmp, load float64
}

var cnnProfiles = map[string]cnnProfile{
	"resnet50":    {base: 0.32, depthSlope: 0.22, wiggleAmp: 0.08, load: 0.007},
	"vgg16":       {base: 0.36, depthSlope: 0.26, wiggleAmp: 0.07, load: 0.012},
	"googlenet":   {base: 0.33, depthSlope: 0.22, wiggleAmp: 0.08, load: 0.0145},
	"inceptionv3": {base: 0.33, depthSlope: 0.22, wiggleAmp: 0.08, load: 0.011},
	"mobilenet":   {base: 0.30, depthSlope: 0.20, wiggleAmp: 0.07, load: 0.010},
	"ssd":         {base: 0.34, depthSlope: 0.20, wiggleAmp: 0.07, load: 0.010},
}

// VisionPreset returns the ImageNet-like preset for a CNN, optionally
// mixed with low-light (ExDark/DarkFace-like) inputs. The first layer sees
// the raw image and carries no activation sparsity.
func VisionPreset(m *models.Model, lowLight bool) Preset {
	prof, ok := cnnProfiles[m.Name]
	if !ok {
		prof = cnnProfile{base: 0.33, depthSlope: 0.22, wiggleAmp: 0.08, load: 0.015}
	}
	n := m.NumLayers()
	means := make([]float64, n)
	loads := make([]float64, n)
	for l := 0; l < n; l++ {
		depth := float64(l) / float64(max(n-1, 1))
		means[l] = prof.base + prof.depthSlope*depth + prof.wiggleAmp*wiggle(m.Name, l)
		loads[l] = prof.load * (0.8 + 0.4*depth)
	}
	means[0] = 0 // raw image input is dense
	loads[0] = 0
	p := Preset{
		Name:       "imagenet",
		LayerMeans: means,
		LayerLoads: loads,
		NoiseSD:    0.02,
		Lo:         0.0,
		Hi:         0.95,
	}
	if lowLight {
		p.Name = "imagenet+lowlight"
		p.DarkFraction = 0.25
		p.DarkShift = 2.2
	}
	return p
}

// attnnProfile holds the calibration constants for one AttNN's attention
// sparsity under the paper's thresholds (§3.2: 0.2 for BART, 0.002 for
// BERT and GPT-2, chosen to preserve accuracy).
type attnnProfile struct {
	base, depthSlope, load, noise float64
	name                          string
}

var attnnProfiles = map[string]attnnProfile{
	"bert": {base: 0.87, depthSlope: 0.05, load: 0.050, noise: 0.010, name: "squad"},
	"gpt2": {base: 0.86, depthSlope: 0.04, load: 0.048, noise: 0.010, name: "glue"},
	"bart": {base: 0.74, depthSlope: 0.04, load: 0.045, noise: 0.012, name: "translation"},
}

// LanguagePreset returns the task preset for an AttNN: SQuAD-like for
// BERT, GLUE-like for GPT-2, translation-like for BART. The shared latent
// factor is the prompt's complexity: simple prompts prune harder and run
// faster (paper Fig. 1c).
func LanguagePreset(m *models.Model) Preset {
	prof, ok := attnnProfiles[m.Name]
	if !ok {
		prof = attnnProfile{base: 0.85, depthSlope: 0.04, load: 0.05, noise: 0.01, name: "language"}
	}
	n := m.NumLayers()
	means := make([]float64, n)
	loads := make([]float64, n)
	for l := 0; l < n; l++ {
		depth := float64(l) / float64(max(n-1, 1))
		means[l] = prof.base + prof.depthSlope*depth + 0.01*wiggle(m.Name, l)
		loads[l] = prof.load
	}
	return Preset{
		Name:       prof.name,
		LayerMeans: means,
		LayerLoads: loads,
		NoiseSD:    prof.noise,
		Lo:         0.50,
		Hi:         0.98,
	}
}

// DefaultPreset selects the benchmark preset for a model: the low-light
// vision mixture for CNNs (the paper's more comprehensive analysis) and
// the task-specific language preset for AttNNs.
func DefaultPreset(m *models.Model) Preset {
	if m.Family == models.CNN {
		return VisionPreset(m, true)
	}
	return LanguagePreset(m)
}

// max is a tiny helper (ints).
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Correlation computes the inter-layer Pearson correlation matrix of
// dynamic sparsity over n samples from the stream, the paper's Fig. 9
// analysis.
func Correlation(s *Stream, n int) [][]float64 {
	layers := s.model.NumLayers()
	series := make([][]float64, layers)
	for l := range series {
		series[l] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		sp := s.Next().Sparsity
		for l, v := range sp {
			series[l][i] = v
		}
	}
	return stats.CorrelationMatrix(series)
}
