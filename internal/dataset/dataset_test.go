package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"sparsedysta/internal/models"
	"sparsedysta/internal/rng"
	"sparsedysta/internal/stats"
)

func TestPresetsMatchModels(t *testing.T) {
	for _, name := range models.Names() {
		m, _ := models.ByName(name)
		p := DefaultPreset(m)
		if err := p.Validate(m); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateRejectsMismatch(t *testing.T) {
	m := models.MobileNet()
	p := DefaultPreset(models.VGG16())
	if err := p.Validate(m); err == nil {
		t.Error("mismatched preset accepted")
	}
	if _, err := NewStream(m, p, 1); err == nil {
		t.Error("NewStream accepted mismatched preset")
	}
	bad := DefaultPreset(m)
	bad.Lo, bad.Hi = 0.9, 0.1
	if err := bad.Validate(m); err == nil {
		t.Error("empty clamp range accepted")
	}
}

func TestSamplesInRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		m := models.ResNet50()
		s := MustStream(m, DefaultPreset(m), seed)
		for i := 0; i < 20; i++ {
			sm := s.Next()
			if len(sm.Sparsity) != m.NumLayers() {
				return false
			}
			for _, v := range sm.Sparsity {
				if v < 0 || v > 0.95 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeterministic(t *testing.T) {
	m := models.BERTBase()
	a := MustStream(m, DefaultPreset(m), 7).Draw(10)
	b := MustStream(m, DefaultPreset(m), 7).Draw(10)
	for i := range a {
		for l := range a[i].Sparsity {
			if a[i].Sparsity[l] != b[i].Sparsity[l] {
				t.Fatalf("sample %d layer %d differs", i, l)
			}
		}
	}
}

func TestFirstCNNLayerDense(t *testing.T) {
	m := models.VGG16()
	s := MustStream(m, VisionPreset(m, true), 3)
	for i := 0; i < 50; i++ {
		if got := s.Next().Sparsity[0]; got != 0 {
			t.Fatalf("first-layer activation sparsity = %v, want 0 (raw image)", got)
		}
	}
}

// TestTable2RelativeRanges verifies the calibration against the paper's
// Table 2: the network-sparsity relative range must land near the reported
// per-model values, and GoogLeNet must spread the widest while ResNet-50
// spreads the narrowest.
func TestTable2RelativeRanges(t *testing.T) {
	paper := map[string]float64{
		"googlenet":   0.283,
		"vgg16":       0.218,
		"inceptionv3": 0.230,
		"resnet50":    0.151,
	}
	const n = 4000
	got := map[string]float64{}
	for name, want := range paper {
		m, _ := models.ByName(name)
		s := MustStream(m, VisionPreset(m, true), 42)
		net := make([]float64, n)
		for i := range net {
			net[i] = s.Next().NetworkSparsity()
		}
		rr := stats.RelativeRange(net)
		got[name] = rr
		if math.Abs(rr-want) > 0.5*want {
			t.Errorf("%s relative range = %.3f, paper %.3f (within 50%% band)", name, rr, want)
		}
	}
	if !(got["googlenet"] > got["resnet50"]) {
		t.Errorf("ordering violated: googlenet %.3f <= resnet50 %.3f",
			got["googlenet"], got["resnet50"])
	}
}

// TestFig3LayerSpread verifies the per-layer sparsity spread of the last
// six layers stays in the band the paper profiles (roughly 10-45% for most
// layers, up to ~70% for VGG).
func TestFig3LayerSpread(t *testing.T) {
	for _, name := range []string{"resnet50", "vgg16"} {
		m, _ := models.ByName(name)
		s := MustStream(m, VisionPreset(m, true), 11)
		const n = 2000
		nl := m.NumLayers()
		last6 := make([][]float64, 6)
		for i := range last6 {
			last6[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			sp := s.Next().Sparsity
			for j := 0; j < 6; j++ {
				last6[j][i] = sp[nl-6+j]
			}
		}
		for j, series := range last6 {
			mean := stats.Mean(series)
			if mean < 0.10 || mean > 0.80 {
				t.Errorf("%s layer[-%d] mean sparsity %.3f outside [0.10, 0.80]", name, 6-j, mean)
			}
			spread := stats.Max(series) - stats.Min(series)
			if spread < 0.05 {
				t.Errorf("%s layer[-%d] spread %.3f too narrow for Fig. 3", name, 6-j, spread)
			}
		}
	}
}

// TestFig9Correlation verifies the inter-layer Pearson correlation of
// AttNN sparsity is strong (the paper reports ~0.8-1.0 for BERT and
// GPT-2), the property justifying Dysta's linear latency predictor.
func TestFig9Correlation(t *testing.T) {
	for _, name := range []string{"bert", "gpt2"} {
		m, _ := models.ByName(name)
		s := MustStream(m, LanguagePreset(m), 13)
		corr := Correlation(s, 2000)
		var sum float64
		var count int
		for i := range corr {
			for j := range corr {
				if i != j {
					sum += corr[i][j]
					count++
				}
			}
		}
		if mean := sum / float64(count); mean < 0.75 {
			t.Errorf("%s mean inter-layer correlation = %.3f, want >= 0.75", name, mean)
		}
	}
}

// TestAttNNSparsityLevels verifies the threshold calibration of §3.2: BERT
// and GPT-2 (threshold 0.002) are much sparser than BART (threshold 0.2).
func TestAttNNSparsityLevels(t *testing.T) {
	level := func(name string) float64 {
		m, _ := models.ByName(name)
		s := MustStream(m, LanguagePreset(m), 17)
		var agg stats.Running
		for i := 0; i < 500; i++ {
			agg.Add(s.Next().NetworkSparsity())
		}
		return agg.Mean()
	}
	bert, gpt2, bart := level("bert"), level("gpt2"), level("bart")
	if bert < 0.82 || bert > 0.95 {
		t.Errorf("BERT mean attention sparsity = %.3f, want ~0.9", bert)
	}
	if gpt2 < 0.80 || gpt2 > 0.95 {
		t.Errorf("GPT-2 mean attention sparsity = %.3f, want ~0.88", gpt2)
	}
	if bart > bert || bart > gpt2 {
		t.Errorf("BART (%.3f) should be less sparse than BERT (%.3f) and GPT-2 (%.3f)",
			bart, bert, gpt2)
	}
}

// TestDarkSamplesAreSparser verifies the low-light mixture shifts samples
// toward higher sparsity, the paper's ExDark/DarkFace observation.
func TestDarkSamplesAreSparser(t *testing.T) {
	m := models.ResNet50()
	s := MustStream(m, VisionPreset(m, true), 19)
	var dark, light stats.Running
	for i := 0; i < 4000; i++ {
		sm := s.Next()
		if sm.Dark {
			dark.Add(sm.NetworkSparsity())
		} else {
			light.Add(sm.NetworkSparsity())
		}
	}
	if dark.N() == 0 || light.N() == 0 {
		t.Fatal("mixture produced no samples on one side")
	}
	if dark.Mean() <= light.Mean() {
		t.Errorf("dark mean %.3f not above light mean %.3f", dark.Mean(), light.Mean())
	}
	frac := float64(dark.N()) / 4000
	if math.Abs(frac-0.25) > 0.05 {
		t.Errorf("dark fraction = %.3f, want ~0.25", frac)
	}
}

func TestLowLightIncreasesSpread(t *testing.T) {
	m := models.VGG16()
	plain := MustStream(m, VisionPreset(m, false), 23)
	mixed := MustStream(m, VisionPreset(m, true), 23)
	rr := func(s *Stream) float64 {
		net := make([]float64, 2000)
		for i := range net {
			net[i] = s.Next().NetworkSparsity()
		}
		return stats.RelativeRange(net)
	}
	if rrPlain, rrMixed := rr(plain), rr(mixed); rrMixed <= rrPlain {
		t.Errorf("low-light mixture did not widen the range: %.3f <= %.3f", rrMixed, rrPlain)
	}
}

func TestChannelDensities(t *testing.T) {
	r := rng.New(29)
	d := ChannelDensities(r, 256, 0.55, 0.1)
	if len(d) != 256 {
		t.Fatalf("len = %d", len(d))
	}
	for _, v := range d {
		if v < 0 || v > 1 {
			t.Fatalf("density %v out of [0,1]", v)
		}
	}
	if m := stats.Mean(d); math.Abs(m-0.55) > 0.05 {
		t.Errorf("mean channel density = %.3f, want ~0.55", m)
	}
	if stats.StdDev(d) < 0.02 {
		t.Error("channel densities have no spread")
	}
}

func TestCorrelationMatrixShape(t *testing.T) {
	m := models.BARTBase()
	s := MustStream(m, DefaultPreset(m), 31)
	corr := Correlation(s, 200)
	if len(corr) != m.NumLayers() {
		t.Fatalf("correlation matrix is %dx?, want %d", len(corr), m.NumLayers())
	}
	for i := range corr {
		if corr[i][i] != 1 {
			t.Errorf("diagonal [%d] = %v", i, corr[i][i])
		}
	}
}
