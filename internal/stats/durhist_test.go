package stats

import (
	"math"
	"sort"
	"testing"
	"time"

	"sparsedysta/internal/rng"
)

// TestDurHistBuckets pins the bucket geometry: indices are monotone in
// the value, every value lies inside its bucket's bounds, and the bucket
// width never exceeds 1/32 of the bucket's lower bound (plus the exact
// 1ns buckets at the bottom).
func TestDurHistBuckets(t *testing.T) {
	r := rng.New(7)
	values := []int64{0, 1, 31, 32, 33, 63, 64, 65, 1023, 1024, 1 << 40, math.MaxInt64}
	for i := 0; i < 5000; i++ {
		values = append(values, int64(r.Uint64()>>1))
	}
	for _, v := range values {
		idx := durHistIndex(v)
		if idx < 0 || idx >= durHistBuckets {
			t.Fatalf("value %d: index %d out of range", v, idx)
		}
		upper := durHistUpper(idx)
		if v >= upper && upper != math.MaxInt64 { // top bucket saturates inclusively
			t.Fatalf("value %d >= upper bound %d of its bucket %d", v, upper, idx)
		}
		if idx > 0 {
			lower := durHistUpper(idx - 1)
			if v < lower {
				t.Fatalf("value %d < lower bound %d of its bucket %d", v, lower, idx)
			}
			if upper > 0 && lower >= durHistSub && upper-lower > lower/durHistSub {
				t.Fatalf("bucket %d width %d exceeds lower/32 = %d", idx, upper-lower, lower/durHistSub)
			}
		}
	}
}

// TestDurHistQuantile checks the error contract against exact
// nearest-rank order statistics: the true order statistic is never above
// the returned quantile and lies within one bucket width below it.
func TestDurHistQuantile(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		r := rng.New(seed)
		h := &DurationHist{}
		xs := make([]int64, 0, 4000)
		for i := 0; i < 4000; i++ {
			v := int64(r.Exp(1.0) * float64(50*time.Millisecond))
			xs = append(xs, v)
			h.Add(time.Duration(v))
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		for _, p := range []float64{0, 10, 50, 90, 95, 99, 100} {
			rank := int(math.Ceil(p / 100 * float64(len(xs))))
			if rank < 1 {
				rank = 1
			}
			exact := time.Duration(xs[rank-1])
			got := h.Quantile(p)
			if exact > got {
				t.Fatalf("seed %d p%g: exact %v above histogram quantile %v", seed, p, exact, got)
			}
			if width := h.WidthAt(got); got-exact > width {
				t.Fatalf("seed %d p%g: histogram %v vs exact %v differs by more than bucket width %v",
					seed, p, got, exact, width)
			}
		}
	}
}

// TestDurHistMerge checks Merge equals recording both streams into one.
func TestDurHistMerge(t *testing.T) {
	r := rng.New(11)
	var a, b, both DurationHist
	for i := 0; i < 1000; i++ {
		v := time.Duration(r.Intn(int(time.Second)))
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	a.Merge(&b)
	if a.Total() != both.Total() {
		t.Fatalf("merged total %d != combined %d", a.Total(), both.Total())
	}
	for _, p := range []float64{1, 50, 99} {
		if a.Quantile(p) != both.Quantile(p) {
			t.Fatalf("p%g: merged %v != combined %v", p, a.Quantile(p), both.Quantile(p))
		}
	}
}

// TestDurHistEmpty pins the zero-value behavior.
func TestDurHistEmpty(t *testing.T) {
	var h DurationHist
	if got := h.Quantile(99); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	h.Add(-time.Second) // negative clamps to zero instead of corrupting
	if got := h.Quantile(50); got != 0 {
		t.Fatalf("clamped quantile = %v, want 0", got)
	}
}

// TestReservoir pins determinism, the size bound and first-k retention.
func TestReservoir(t *testing.T) {
	a := NewReservoir[int](8, 42)
	b := NewReservoir[int](8, 42)
	for i := 0; i < 1000; i++ {
		a.Add(i)
		b.Add(i)
	}
	if len(a.Items()) != 8 || a.N() != 1000 {
		t.Fatalf("reservoir holds %d of %d, want 8 of 1000", len(a.Items()), a.N())
	}
	for i, x := range a.Items() {
		if b.Items()[i] != x {
			t.Fatalf("same seed diverged at slot %d: %d vs %d", i, x, b.Items()[i])
		}
	}
	small := NewReservoir[int](8, 1)
	for i := 0; i < 5; i++ {
		small.Add(i)
	}
	for i, x := range small.Items() {
		if x != i {
			t.Fatalf("under-full reservoir reordered: slot %d = %d", i, x)
		}
	}
}
