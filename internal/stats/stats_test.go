package stats

import (
	"math"
	"testing"
	"testing/quick"

	"sparsedysta/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of single sample = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolated value.
	if got := Percentile([]float64{10, 20}, 50); !almostEqual(got, 15, 1e-12) {
		t.Errorf("interpolated median = %v, want 15", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestRelativeRange(t *testing.T) {
	// (max-min)/mean: (0.6-0.4)/0.5 = 0.4
	xs := []float64{0.4, 0.5, 0.6}
	if got := RelativeRange(xs); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("RelativeRange = %v, want 0.4", got)
	}
	if got := RelativeRange(nil); got != 0 {
		t.Errorf("RelativeRange(nil) = %v, want 0", got)
	}
	if got := RelativeRange([]float64{-1, 1}); got != 0 {
		t.Errorf("RelativeRange with zero mean = %v, want 0", got)
	}
}

func TestRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	target := []float64{1, 2, 3}
	if got := RMSE(pred, target); got != 0 {
		t.Errorf("RMSE of identical series = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v", got)
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RMSE length mismatch did not panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant series = %v, want 0", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm()
			ys[i] = r.Norm()
		}
		c := Pearson(xs, ys)
		return c >= -1-1e-9 && c <= 1+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	series := [][]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},
		{4, 3, 2, 1},
	}
	m := CorrelationMatrix(series)
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d][%d] = %v", i, i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if !almostEqual(m[0][1], 1, 1e-12) {
		t.Errorf("m[0][1] = %v, want 1", m[0][1])
	}
	if !almostEqual(m[0][2], -1, 1e-12) {
		t.Errorf("m[0][2] = %v, want -1", m[0][2])
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-1, 0, 10, 0}, {11, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.AddAll([]float64{0.05, 0.15, 0.15, 0.95})
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Errorf("unexpected counts %v", h.Counts)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(5)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("out-of-range values not clamped: %v", h.Counts)
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		h := NewHistogram(-3, 3, 24)
		for i := 0; i < 500; i++ {
			h.Add(r.Norm())
		}
		var integral float64
		for i := range h.Counts {
			integral += h.Density(i) * h.BinWidth()
		}
		return almostEqual(integral, 1, 1e-9)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); !almostEqual(got, 9, 1e-12) {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.AddAll([]float64{0.1, 0.2, 0.8})
	out := h.Render(10)
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	r := rng.New(99)
	xs := make([]float64, 1000)
	var run Running
	for i := range xs {
		xs[i] = r.NormAt(3, 2)
		run.Add(xs[i])
	}
	if !almostEqual(run.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %v != batch mean %v", run.Mean(), Mean(xs))
	}
	if !almostEqual(run.Variance(), Variance(xs), 1e-9) {
		t.Errorf("running variance %v != batch variance %v", run.Variance(), Variance(xs))
	}
	if run.Min() != Min(xs) || run.Max() != Max(xs) {
		t.Errorf("running min/max mismatch")
	}
	if run.N() != len(xs) {
		t.Errorf("running N = %d", run.N())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.N() != 0 {
		t.Error("zero-value Running not zeroed")
	}
}
