package stats

import "sparsedysta/internal/rng"

// Reservoir keeps a uniform fixed-size sample of a stream (Vitter's
// algorithm R), the bounded-memory replacement for full Tasks capture:
// a streaming run retains k exemplar outcomes instead of millions. The
// sample is a deterministic function of (seed, stream order), so two
// runs observing the same completion sequence keep identical exemplars.
type Reservoir[T any] struct {
	items []T
	k     int
	n     int64
	r     *rng.Source
}

// NewReservoir returns a reservoir holding at most k items, drawing its
// replacement decisions from a private rng stream seeded with seed.
func NewReservoir[T any](k int, seed uint64) *Reservoir[T] {
	return &Reservoir[T]{items: make([]T, 0, k), k: k, r: rng.New(seed)}
}

// Add offers one stream element to the sample.
func (rv *Reservoir[T]) Add(x T) {
	rv.n++
	if len(rv.items) < rv.k {
		rv.items = append(rv.items, x)
		return
	}
	if j := rv.r.Intn(int(rv.n)); j < rv.k {
		rv.items[j] = x
	}
}

// N returns the number of stream elements offered so far.
func (rv *Reservoir[T]) N() int64 { return rv.n }

// Items returns the current sample in reservoir order (not stream
// order). The slice is the reservoir's own; callers must not mutate it.
func (rv *Reservoir[T]) Items() []T { return rv.items }
