package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-width binned density estimate over [Lo, Hi). Values
// outside the range are clamped into the first/last bin, matching the way
// the paper's profiling figures (Figs. 2 and 4) present normalized-latency
// and normalized-MAC distributions with bounded axes.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram over [lo, hi) with the given number of
// bins. It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the probability density of bin i (so that density ×
// bin-width sums to 1), or 0 if the histogram is empty. This matches the
// "Probability" y-axes of the paper's distribution figures.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.total) * h.BinWidth())
}

// Densities returns the density of every bin.
func (h *Histogram) Densities() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = h.Density(i)
	}
	return out
}

// Render draws the histogram as a fixed-width ASCII bar chart, one bin per
// line, suitable for the text output of cmd/dysta-bench.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%8.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
