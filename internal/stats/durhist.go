package stats

import (
	"math"
	"math/bits"
	"time"
)

// DurationHist is a log-bucketed histogram over non-negative durations,
// the bounded-memory replacement for the per-request latency slices of
// full-capture runs. Buckets are HDR-style: 32 sub-buckets per power of
// two, so every recorded value lands in a bucket whose width is at most
// 1/32 (~3.1%) of its magnitude, and the whole structure is a fixed
// ~1.9k counters regardless of how many observations stream through it.
// Negative durations clamp to zero (they cannot occur in a causally
// correct run; clamping keeps a corrupted input visible in bucket zero
// instead of panicking mid-stream).
type DurationHist struct {
	counts [durHistBuckets]int64
	total  int64
}

// durHistSubBits fixes the per-octave resolution: 2^5 = 32 sub-buckets,
// giving a worst-case relative bucket width of 1/32.
const durHistSubBits = 5

const durHistSub = 1 << durHistSubBits // sub-buckets per octave

// durHistBuckets covers the exact range [0, 32) plus every octave
// [2^5, 2^63): 32 + (62-5+1)*32. Any int64 duration indexes in range.
const durHistBuckets = durHistSub + (63-durHistSubBits)*durHistSub

// durHistIndex maps a non-negative value to its bucket.
func durHistIndex(v int64) int {
	u := uint64(v)
	if u < durHistSub {
		return int(u) // exact buckets below one octave of sub-buckets
	}
	k := bits.Len64(u) - 1 // leading-bit position, >= durHistSubBits
	sub := int(u>>(uint(k)-durHistSubBits)) & (durHistSub - 1)
	return durHistSub + (k-durHistSubBits)*durHistSub + sub
}

// durHistUpper returns the exclusive upper bound of bucket idx,
// saturating at MaxInt64 for the topmost bucket (whose true bound 2^63
// does not fit an int64; no simulated duration gets anywhere near it).
func durHistUpper(idx int) int64 {
	if idx < durHistSub {
		return int64(idx) + 1
	}
	k := uint(idx-durHistSub)/durHistSub + durHistSubBits
	sub := int64(idx-durHistSub) % durHistSub
	width := int64(1) << (k - durHistSubBits)
	upper := int64(1)<<k + (sub+1)*width
	if upper <= 0 {
		return math.MaxInt64
	}
	return upper
}

// Add records one observation. Negative durations clamp to zero.
func (h *DurationHist) Add(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[durHistIndex(v)]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *DurationHist) Total() int64 { return h.total }

// Merge adds every observation of other into h.
func (h *DurationHist) Merge(other *DurationHist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
}

// Quantile returns the p-th percentile (p in [0,100]) as the largest
// value representable in the bucket holding the nearest-rank order
// statistic, so the true order statistic lies within one bucket width
// below the returned value. It returns 0 before any observation.
func (h *DurationHist) Quantile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	// Nearest-rank: the ceil(p/100 * n)-th smallest observation.
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return time.Duration(durHistUpper(i) - 1)
		}
	}
	return time.Duration(durHistUpper(durHistBuckets-1) - 1) // unreachable
}

// WidthAt returns the width of the bucket that holds d: the error bound
// of Quantile at that magnitude (exactly 1ns below one octave of
// sub-buckets, at most d/32 + 1ns above).
func (h *DurationHist) WidthAt(d time.Duration) time.Duration {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	idx := durHistIndex(v)
	if idx < durHistSub {
		return 1
	}
	return time.Duration(int64(1) << (uint(idx-durHistSub) / durHistSub))
}
