package stats

import "math"

// Running accumulates streaming summary statistics in a single pass using
// Welford's algorithm. It is used by the scheduler engine to track metric
// aggregates without retaining per-request slices.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations recorded.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or 0 before any observation.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the running population variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 before any observation.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 before any observation.
func (r *Running) Max() float64 { return r.max }
