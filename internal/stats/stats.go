// Package stats provides the statistical primitives used across the
// Sparse-DySta reproduction: summary statistics, percentiles, histograms,
// Pearson correlation, RMSE and the "relative range" metric of the paper's
// Table 2.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n), or 0 when
// fewer than two samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// RelativeRange returns (max-min)/mean, the network-sparsity spread metric
// reported in the paper's Table 2. It returns 0 when the mean is zero or the
// slice is empty.
func RelativeRange(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return (Max(xs) - Min(xs)) / m
}

// RMSE returns the root-mean-square error between predictions and targets.
// It panics if the slices differ in length or are empty.
func RMSE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("stats: RMSE length mismatch")
	}
	if len(pred) == 0 {
		panic(ErrEmpty)
	}
	var sum float64
	for i := range pred {
		d := pred[i] - target[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// Pearson returns the Pearson product-moment correlation coefficient between
// xs and ys. It panics if lengths differ or fewer than two samples are
// given. When either series is constant the correlation is undefined and 0
// is returned.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: Pearson needs at least two samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrelationMatrix returns the matrix of pairwise Pearson correlations
// between the columns of series, where series[i] is the i-th column
// (variable) observed over the same samples. All columns must have equal,
// non-trivial length.
func CorrelationMatrix(series [][]float64) [][]float64 {
	n := len(series)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := Pearson(series[i], series[j])
			m[i][j], m[j][i] = c, c
		}
	}
	return m
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
