// Heterogeneous serving router: one fast accelerator next to three
// half-speed ones behind a dispatch layer whose view of engine state can
// be stale and whose front door can refuse work — the three realities
// that separate a production router from the idealized fan-out.
//
// The walkthrough has three acts on the mobile-assistant AttNN workload:
//
//  1. Dispatch on a heterogeneous node: round-robin ignores capacity and
//     drowns the slow engines; capacity-normalized jsq and
//     sparsity-aware least-load keep the fast engine fed.
//
//  2. Signal staleness: as the router's metrics pipeline lags, the
//     load-aware policies degrade toward (and past) blind round-robin.
//
//  3. Admission control at overload: shedding hopeless requests trades
//     raw throughput for goodput — completions that met their SLO.
//
//     go run ./examples/hetero_router
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func main() {
	scenario := workload.MultiAttNN()
	profiling, evaluation, err := workload.BuildStores(scenario, 60, 250, 13)
	if err != nil {
		log.Fatal(err)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}
	est := sched.NewEstimator(lut)

	// One double-speed accelerator plus three half-speed ones: total
	// capacity 3.5 reference engines.
	specs := []cluster.EngineSpec{
		{LatencyScale: 0.5},
		{LatencyScale: 2}, {LatencyScale: 2}, {LatencyScale: 2},
	}
	const capacity = 2 + 0.5 + 0.5 + 0.5
	mean, err := workload.MeanIsolated(scenario, evaluation)
	if err != nil {
		log.Fatal(err)
	}
	rate := capacity * 0.95 / mean.Seconds()
	fmt.Printf("edge router: 1 double-speed + 3 half-speed accelerators (capacity %.1f reference engines)\n", capacity)
	fmt.Printf("mean isolated inference %v; arrival rate %.1f req/s (~95%% utilization)\n\n", mean.Round(time.Millisecond), rate)

	requests, err := workload.Generate(scenario, evaluation, workload.GenConfig{
		Requests: 2000, RatePerSec: rate, SLOMultiplier: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	newDysta := func(int) sched.Scheduler { return core.NewDefault(lut) }
	run := func(cfg cluster.Config) cluster.Result {
		cfg.Specs = specs
		res, err := cluster.Run(newDysta, requests, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	load := func() cluster.Dispatcher {
		return cluster.NewLeastLoad("sparse-load", cluster.SparsityAwareLoad(lut, est))
	}

	// Act 1: dispatch policy on the heterogeneous node, exact signals.
	fmt.Println("1) dispatch on the heterogeneous node (exact signals):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dispatch\tANTT\tviol%\tfast-engine share\timbalance")
	for _, mk := range []func() cluster.Dispatcher{
		func() cluster.Dispatcher { return cluster.NewRoundRobin() },
		func() cluster.Dispatcher { return cluster.NewJSQ() },
		load,
	} {
		res := run(cluster.Config{Dispatch: mk()})
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\t%.0f%%\t%.3f\n",
			res.Dispatch, res.ANTT, 100*res.ViolationRate,
			100*float64(res.PerEngine[0].Requests)/float64(res.Requests), res.Imbalance)
	}
	tw.Flush()

	// Act 2: the sparsity-aware policy under a lagging metrics pipeline.
	fmt.Println("\n2) sparse-load dispatch under stale signals:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "signal interval\tANTT\tviol%\timbalance")
	for _, interval := range []time.Duration{0, time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond} {
		res := run(cluster.Config{Dispatch: load(), SignalInterval: interval})
		fmt.Fprintf(tw, "%v\t%.2f\t%.1f\t%.3f\n",
			interval, res.ANTT, 100*res.ViolationRate, res.Imbalance)
	}
	tw.Flush()

	// Act 3: admission control at overload (1.6x capacity).
	overload, err := workload.Generate(scenario, evaluation, workload.GenConfig{
		Requests: 2000, RatePerSec: 1.6 * rate, SLOMultiplier: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n3) admission control at 1.6x capacity:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "admission\trejected\tviol%\tthroughput\tgoodput")
	for _, adm := range []cluster.Admission{
		cluster.AdmitAll{},
		cluster.QueueCap{Cap: 8},
		cluster.SLOShed{
			Iso:  cluster.RequestIsolated(lut, est),
			Load: cluster.SparsityAwareLoad(lut, est),
		},
	} {
		res, err := cluster.Run(newDysta, overload,
			cluster.Config{Specs: specs, Dispatch: load(), Admission: adm})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\n",
			res.Admission, res.Rejected, 100*res.ViolationRate, res.Throughput, res.Goodput)
	}
	tw.Flush()
}
