// AR/VR wearable: the paper's Table 3 wearable scenario.
//
// An AR headset runs SSD for hand detection and MobileNet for gesture
// recognition on an Eyeriss-V2-class sparse CNN accelerator. Hand tracking
// has tight latency requirements, so the SLO multiplier is small; this
// example builds the scenario from scratch (a custom workload.Scenario
// rather than a preset) to show the API, and sweeps the SLO multiplier to
// find where each scheduler starts violating.
//
//	go run ./examples/arvr_wearable
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"sparsedysta/internal/accel/eyeriss"
	"sparsedysta/internal/core"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func main() {
	// Hand detection dominates the request mix 2:1 over gesture
	// recognition; both models ship with random 80% weight pruning.
	scenario := workload.Scenario{
		Name: "arvr-wearable",
		Entries: []workload.Entry{
			{Model: models.SSD300(), Pattern: sparsity.RandomPointwise, WeightRate: 0.8, Weight: 2},
			{Model: models.MobileNet(), Pattern: sparsity.RandomPointwise, WeightRate: 0.8, Weight: 1},
		},
		Accel: eyeriss.NewDefault(),
	}

	profiling, evaluation, err := workload.BuildStores(scenario, 80, 300, 11)
	if err != nil {
		log.Fatal(err)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}
	est := sched.NewEstimator(lut)

	mean, err := workload.MeanIsolated(scenario, evaluation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AR/VR wearable: SSD hand detection + MobileNet gestures on Eyeriss-V2\n")
	fmt.Printf("mean isolated inference: %v\n\n", mean.Round(time.Millisecond))

	rate := 0.8 / mean.Seconds() // ~80%% utilization
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "M_slo\tSJF viol%\tDysta viol%\tSJF ANTT\tDysta ANTT")
	for _, mslo := range []float64{3, 5, 10, 20} {
		requests, err := workload.Generate(scenario, evaluation, workload.GenConfig{
			Requests: 600, RatePerSec: rate, SLOMultiplier: mslo, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		sjf, err := sched.Run(sched.NewSJF(est), requests, sched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		dysta, err := sched.Run(core.NewDefault(lut), requests, sched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%.0fx\t%.1f\t%.1f\t%.2f\t%.2f\n",
			mslo, 100*sjf.ViolationRate, 100*dysta.ViolationRate, sjf.ANTT, dysta.ANTT)
	}
	tw.Flush()
}
