// Engine churn on a serving cluster: the walkthrough for the fault
// injector and the degraded-mode contracts behind it.
//
// The setup is a uniform 4-engine cluster behind a sparsity-aware
// router whose engine snapshots lag by 20ms — long enough that a
// freshly dead engine keeps looking alive (and attractively idle) to
// the dispatcher for many arrivals. Then the engines start dying on an
// exponential availability clock. Three acts:
//
//  1. The damage: the same stream with churn off, then at rising
//     failure rates — queued work fails over, in-flight work restarts
//     from layer zero, arrivals bounce off corpses the stale router
//     still routes to, and the violation rate climbs.
//
//  2. The repair: work stealing against the same failure schedule. A
//     recovered engine re-enters empty — exactly the idle thief the
//     steal trigger looks for — so the outage backlog re-spreads
//     instead of drowning the survivors.
//
//  3. Writing work off: capping retries trades completions under churn
//     for bounded worst-case work; the books must balance either way
//     (every request ends as goodput, a violation, rejected, or lost).
//
//     go run ./examples/chaos_cluster
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func main() {
	scenario := workload.MultiAttNN()
	profiling, evaluation, err := workload.BuildStores(scenario, 60, 250, 13)
	if err != nil {
		log.Fatal(err)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}
	est := sched.NewEstimator(lut)
	load := cluster.SparsityAwareLoad(lut, est)

	const engines = 4
	const stale = 20 * time.Millisecond
	const mttr = 150 * time.Millisecond
	mean, err := workload.MeanIsolated(scenario, evaluation)
	if err != nil {
		log.Fatal(err)
	}
	rate := engines * 0.8 / mean.Seconds()
	requests, err := workload.Generate(scenario, evaluation, workload.GenConfig{
		Requests: 2000, RatePerSec: rate, SLOMultiplier: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	horizon := 2 * time.Duration(float64(len(requests))/rate*float64(time.Second))
	fmt.Printf("%d uniform engines at %.0f req/s (~80%% utilization), router snapshots %v stale\n",
		engines, rate, stale)
	fmt.Printf("churn: exponential up/down phases per engine, MTTR %v\n\n", mttr)

	newDysta := func(int) sched.Scheduler { return core.NewDefault(lut) }
	run := func(cfg cluster.Config) cluster.Result {
		cfg.Engines = engines
		cfg.Dispatch = cluster.NewLeastLoad("sparse-load", load)
		cfg.SignalInterval = stale
		res, err := cluster.Run(newDysta, requests, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	churnPlan := func(mtbf time.Duration) *cluster.ChurnPlan {
		plan, err := cluster.GenChurn(engines, horizon, mtbf, mttr, 29)
		if err != nil {
			log.Fatal(err)
		}
		return &plan
	}

	// Act 1: what churn costs without any repair.
	fmt.Println("1) the damage: rising failure rates, nobody helps:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mtbf\tevents\tfailovers\tretries\tredirects\tlost\tviol%\tANTT")
	calm := run(cluster.Config{})
	fmt.Fprintf(tw, "-\t0\t0\t0\t0\t0\t%.1f\t%.2f\n", 100*calm.ViolationRate, calm.ANTT)
	stormy := map[time.Duration]cluster.Result{}
	for _, mtbf := range []time.Duration{4 * time.Second, 2 * time.Second, time.Second} {
		res := run(cluster.Config{Churn: churnPlan(mtbf)})
		stormy[mtbf] = res
		fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.2f\n",
			mtbf, res.ChurnEvents, res.Failovers, res.Retries, res.Redirects,
			res.LostWork, 100*res.ViolationRate, res.ANTT)
	}
	tw.Flush()

	// Act 2: work stealing against the exact same failure schedules.
	fmt.Println("\n2) the repair: steal every 2ms (cost 200µs), same failures:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mtbf\tmigrations\tretries\tviol%\tgap recovered")
	for _, mtbf := range []time.Duration{4 * time.Second, 2 * time.Second, time.Second} {
		res := run(cluster.Config{
			Churn:             churnPlan(mtbf),
			Rebalance:         cluster.Steal{Load: load},
			RebalanceInterval: 2 * time.Millisecond,
			MigrationCost:     200 * time.Microsecond,
		})
		recovered := 0.0
		if gap := stormy[mtbf].ViolationRate - calm.ViolationRate; gap > 0 {
			recovered = 100 * (stormy[mtbf].ViolationRate - res.ViolationRate) / gap
		}
		fmt.Fprintf(tw, "%v\t%d\t%d\t%.1f\t%.0f%%\n",
			mtbf, res.Migrations, res.Retries, 100*res.ViolationRate, recovered)
	}
	tw.Flush()

	// Act 3: the retry cap. Every request must land somewhere — the
	// conservation identity below is checked inside cluster.Run too.
	fmt.Println("\n3) writing work off: retry caps at mtbf 1s:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "retry-max\tretries\tlost\tgoodput+viol+rejected+lost\toffered")
	for _, cap := range []int{0, 2, 1} {
		res := run(cluster.Config{Churn: churnPlan(time.Second), RetryMax: cap})
		capCell := "unlimited"
		if cap > 0 {
			capCell = fmt.Sprintf("%d", cap)
		}
		good := res.Requests - res.Violations
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d+%d+%d+%d = %d\t%d\n",
			capCell, res.Retries, res.LostWork,
			good, res.Violations, res.Rejected, res.LostWork,
			good+res.Violations+res.Rejected+res.LostWork, res.Offered)
	}
	tw.Flush()
}
