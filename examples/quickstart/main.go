// Quickstart: the minimal end-to-end use of the library.
//
// It builds the paper's multi-AttNN benchmark workload (BERT + GPT-2 +
// BART on the Sanger sparse-attention accelerator), runs it under the
// sparsity-blind SJF baseline and under Dysta, and prints the two metrics
// the paper optimizes: ANTT and SLO violation rate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func main() {
	// Phase 1 (paper Fig. 7): run the hardware simulator over the
	// dataset to produce runtime information — a profiling set for the
	// schedulers' LUTs and a disjoint evaluation set for the engine.
	scenario := workload.MultiAttNN()
	profiling, evaluation, err := workload.BuildStores(scenario, 100, 400, 1)
	if err != nil {
		log.Fatal(err)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2: generate a Poisson request stream (30 req/s, SLO = 10x
	// the mean isolated latency) and replay it under each scheduler.
	requests, err := workload.Generate(scenario, evaluation, workload.GenConfig{
		Requests:      1000,
		RatePerSec:    30,
		SLOMultiplier: 10,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}

	schedulers := []sched.Scheduler{
		sched.NewSJF(sched.NewEstimator(lut)),
		core.NewDefault(lut),
	}
	fmt.Println("multi-AttNN workload, 1000 requests at 30 req/s, M_slo = 10x")
	for _, s := range schedulers {
		result, err := sched.Run(s, requests, sched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s ANTT %5.2f   SLO violations %5.1f%%   throughput %.1f inf/s\n",
			result.Scheduler, result.ANTT, 100*result.ViolationRate, result.Throughput)
	}
}
