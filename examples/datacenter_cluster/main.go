// Data-center multi-accelerator serving: the sharded scale-out of the
// paper's data-center scenario (Table 3) onto a node with four Eyeriss-V2
// accelerators behind a dispatch layer.
//
// Each arriving request (SSD, VGG-16, ResNet-50 in three sparsity
// patterns each) is routed to one accelerator at arrival; every
// accelerator runs its own Dysta scheduler. The example compares dispatch
// policies at a rate that saturates the node: round-robin (load-blind),
// join-shortest-queue (counts requests, not work), and least-predicted-
// load with the sparsity-aware Dysta LUT — the dispatch-layer analogue of
// the paper's core insight, since the same architecture differs up to
// ~40% in effective work across sparsity patterns (Fig. 4).
//
//	go run ./examples/datacenter_cluster
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"sparsedysta/internal/accel/eyeriss"
	"sparsedysta/internal/cluster"
	"sparsedysta/internal/core"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func main() {
	const nEngines = 4

	variants := []struct {
		pattern sparsity.Pattern
		rate    float64
	}{
		{sparsity.RandomPointwise, 0.85},
		{sparsity.BlockNM, 0.75},
		{sparsity.ChannelWise, 0.70},
	}
	var entries []workload.Entry
	for _, build := range []func() *models.Model{models.SSD300, models.VGG16, models.ResNet50} {
		for _, v := range variants {
			entries = append(entries, workload.Entry{
				Model: build(), Pattern: v.pattern, WeightRate: v.rate, Weight: 1})
		}
	}
	scenario := workload.Scenario{
		Name:    "datacenter-cluster",
		Entries: entries,
		Accel:   eyeriss.NewDefault(),
	}

	profiling, evaluation, err := workload.BuildStores(scenario, 60, 250, 13)
	if err != nil {
		log.Fatal(err)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}
	est := sched.NewEstimator(lut)

	mean, err := workload.MeanIsolated(scenario, evaluation)
	if err != nil {
		log.Fatal(err)
	}
	// ~95% utilization per accelerator: the knee where dispatch matters.
	rate := float64(nEngines) * 0.95 / mean.Seconds()
	fmt.Printf("data-center node: %d accelerators, SSD + VGG-16 + ResNet-50, 3 patterns each\n", nEngines)
	fmt.Printf("mean isolated inference %v; arrival rate %.2f req/s (~95%% per-engine utilization)\n\n",
		mean.Round(time.Millisecond), rate)

	requests, err := workload.Generate(scenario, evaluation, workload.GenConfig{
		Requests: 2000, RatePerSec: rate, SLOMultiplier: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	policies := []func() cluster.Dispatcher{
		func() cluster.Dispatcher { return cluster.NewRoundRobin() },
		func() cluster.Dispatcher { return cluster.NewJSQ() },
		func() cluster.Dispatcher { return cluster.NewLeastLoad("blind-load", cluster.BlindLoad(est)) },
		func() cluster.Dispatcher {
			return cluster.NewLeastLoad("sparse-load", cluster.SparsityAwareLoad(lut, est))
		},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dispatch\tANTT\tviol%\tthroughput\tutilization\timbalance")
	var last cluster.Result
	for _, mk := range policies {
		d := mk()
		res, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) },
			requests, cluster.Config{Engines: nEngines, Dispatch: d})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\t%.1f\t%.1f%%\t%.3f\n",
			res.Dispatch, res.ANTT, 100*res.ViolationRate, res.Throughput,
			100*res.Utilization, res.Imbalance)
		last = res
	}
	tw.Flush()

	// Per-engine breakdown under the sparsity-aware policy: how evenly
	// the predicted-load dispatcher spread the work.
	fmt.Printf("\nper-engine breakdown under %s dispatch:\n", last.Dispatch)
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\trequests\tANTT\tviol%")
	for i, r := range last.PerEngine {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.1f\n", i, r.Requests, r.ANTT, 100*r.ViolationRate)
	}
	tw.Flush()
}
