// Data center visual perception: the paper's Table 3 data-center scenario.
//
// A serving node handles object detection (SSD) and image classification
// (VGG-16, ResNet-50) requests from many users. Models arrive in all three
// static sparsity patterns (different tenants ship differently pruned
// checkpoints), so the pattern-awareness of the scheduler matters: the
// same architecture differs up to ~40% in effective work across patterns
// (paper Fig. 4). The example compares pattern-blind and pattern-aware
// scheduling and prints a per-model latency breakdown under Dysta.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"sparsedysta/internal/accel/eyeriss"
	"sparsedysta/internal/core"
	"sparsedysta/internal/models"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func main() {
	variants := []struct {
		pattern sparsity.Pattern
		rate    float64
	}{
		{sparsity.RandomPointwise, 0.85},
		{sparsity.BlockNM, 0.75},
		{sparsity.ChannelWise, 0.70},
	}
	var entries []workload.Entry
	for _, build := range []func() *models.Model{models.SSD300, models.VGG16, models.ResNet50} {
		for _, v := range variants {
			entries = append(entries, workload.Entry{
				Model: build(), Pattern: v.pattern, WeightRate: v.rate, Weight: 1})
		}
	}
	scenario := workload.Scenario{
		Name:    "datacenter-perception",
		Entries: entries,
		Accel:   eyeriss.NewDefault(),
	}

	profiling, evaluation, err := workload.BuildStores(scenario, 60, 250, 13)
	if err != nil {
		log.Fatal(err)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}

	mean, err := workload.MeanIsolated(scenario, evaluation)
	if err != nil {
		log.Fatal(err)
	}
	rate := 0.85 / mean.Seconds()
	fmt.Printf("data-center visual perception: SSD + VGG-16 + ResNet-50, 3 patterns each\n")
	fmt.Printf("mean isolated inference %v; arrival rate %.2f req/s (~85%% utilization)\n\n",
		mean.Round(time.Millisecond), rate)

	requests, err := workload.Generate(scenario, evaluation, workload.GenConfig{
		Requests: 800, RatePerSec: rate, SLOMultiplier: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheduler\tANTT\tviol%")
	for _, s := range []sched.Scheduler{
		sched.NewSJF(sched.NewEstimator(lut)), // pattern-blind estimates
		core.NewWithoutSparse(lut),            // pattern-aware static level
		core.NewDefault(lut),                  // + dynamic sparsity refinement
	} {
		r, err := sched.Run(s, requests, sched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\n", r.Scheduler, r.ANTT, 100*r.ViolationRate)
	}
	tw.Flush()

	// Per-pattern isolated-latency spread of one architecture: the reason
	// pattern-blind estimates mislead the scheduler.
	fmt.Println("\nisolated latency of ResNet-50 by pattern (equal architecture, different masks):")
	for _, v := range variants {
		k := trace.Key{Model: "resnet50", Pattern: v.pattern}
		st := lut.MustLookup(k)
		fmt.Printf("  %-8s rate %.0f%%: %v\n", v.pattern, 100*v.rate,
			st.AvgTotal.Round(time.Millisecond))
	}
}
