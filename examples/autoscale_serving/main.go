// Live serving under bursty traffic: the walkthrough for the arrival-
// process catalogue (internal/traffic) and the SLO-driven autoscaler
// built on top of it.
//
// The setup is a 4-engine cluster behind a sparsity-aware router whose
// engine snapshots lag by 5ms, offered a stream whose long-run mean
// rate is only half the cluster's capacity — but whose shape varies.
// Three acts:
//
//  1. The traffic: the same mean rate as stationary Poisson, as an
//     MMPP whose bursts run 8x its quiet rate, and as a diurnal curve
//     with a 1.7x peak. Same offered load, very different queueing.
//
//  2. The provisioning dilemma: serve each stream with one always-on
//     engine (provisioned for well under the mean) and with all four
//     (provisioned for the burst). Fixed-min drowns; fixed-max buys
//     its goodput with engine-seconds that sit idle between bursts.
//
//  3. The autoscaler: scale 1..4 on the SLO-derived policy — up when
//     the mean predicted queueing delay eats a quarter of the SLO
//     budget, down when it falls under a tenth and half the live set
//     idles. The frontier point: nearly fixed-max goodput at a
//     fraction of its bill, with the action count showing how hard
//     the policy worked for it.
//
//     go run ./examples/autoscale_serving
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/traffic"
	"sparsedysta/internal/workload"
)

func main() {
	scenario := workload.MultiAttNN()
	profiling, evaluation, err := workload.BuildStores(scenario, 60, 250, 13)
	if err != nil {
		log.Fatal(err)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}
	est := sched.NewEstimator(lut)
	load := cluster.SparsityAwareLoad(lut, est)

	const engines = 4
	const stale = 5 * time.Millisecond
	const requests = 2000
	mean, err := workload.MeanIsolated(scenario, evaluation)
	if err != nil {
		log.Fatal(err)
	}
	// Half the cluster's capacity on average: plenty of headroom for a
	// stationary stream, not nearly enough for its bursts.
	rate := engines * 0.5 / mean.Seconds()
	span := time.Duration(requests / rate * float64(time.Second))

	processes := []struct {
		name string
		proc traffic.Process
	}{
		{"poisson", traffic.NewPoisson(rate)},
		// 8x bursts covering 20% of time, each burst spanning ~20 mean
		// inter-arrival times.
		{"mmpp-8x", traffic.Bursty(rate, 8, 0.2, time.Duration(20/rate*float64(time.Second)))},
		// One day/night cycle across the stream, peaking at 1.7x the mean.
		{"diurnal", &traffic.Diurnal{Base: rate, Amplitude: 0.7, Period: span}},
	}

	fmt.Printf("%d engines at %.0f req/s mean offered load (~50%% of capacity), router snapshots %v stale\n",
		engines, rate, stale)
	fmt.Printf("per-request SLO: 10x isolated latency; every stream has the same long-run mean rate\n\n")

	newDysta := func(int) sched.Scheduler { return core.NewDefault(lut) }
	run := func(reqs []*workload.Request, n int, pol *cluster.Autoscaler) cluster.Result {
		res, err := cluster.Run(newDysta, reqs, cluster.Config{
			Engines:        n,
			Dispatch:       cluster.NewLeastLoad("sparse-load", load),
			SignalInterval: stale,
			Autoscale:      pol,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "traffic\tpolicy\tviol%\tgoodput\tengine-s\tups\tdowns")
	for _, p := range processes {
		reqs, err := workload.Generate(scenario, evaluation, workload.GenConfig{
			Requests: requests, RatePerSec: rate, SLOMultiplier: 10, Seed: 3,
			Process: p.proc})
		if err != nil {
			log.Fatal(err)
		}
		// The SLO-derived thresholds: scale up past SLO/4 of predicted
		// queueing delay, down under SLO/10, one action per refresh with
		// an SLO/10 cooldown.
		var budget time.Duration
		for _, r := range reqs {
			budget += r.SLO
		}
		budget /= time.Duration(len(reqs))
		scaler := &cluster.Autoscaler{
			Min: 1, Max: engines,
			Up: budget / 4, Down: budget / 10, Cooldown: budget / 10,
			Load: load,
		}

		arms := []struct {
			name    string
			engines int
			pol     *cluster.Autoscaler
		}{
			{"fixed-min", 1, nil},
			{"fixed-max", engines, nil},
			{"autoscale", engines, scaler},
		}
		for _, a := range arms {
			res := run(reqs, a.engines, a.pol)
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.1f\t%d\t%d\n",
				p.name, a.name, 100*res.ViolationRate, res.Goodput,
				res.EngineSeconds, res.ScaleUps, res.ScaleDowns)
		}
	}
	tw.Flush()

	fmt.Println("\nReading the table:")
	fmt.Println(" - fixed-min bills the fewest engine-seconds and pays in violations on every bursty stream")
	fmt.Println(" - fixed-max holds the best goodput but bills all four engines for the whole run")
	fmt.Println(" - autoscale tracks fixed-max goodput at a fraction of its bill: idle engines drain")
	fmt.Println("   between bursts and re-join (ups/downs) when predicted queueing delay threatens the SLO")
}
