// Mobile personal assistant: the paper's Table 3 mobile-phone scenario.
//
// A phone runs three language models concurrently — BERT for question
// answering, BART and GPT-2 for machine translation — on a Sanger-class
// sparse attention NPU. Prompts vary in complexity, so dynamic attention
// sparsity makes per-request latency input-dependent (paper Fig. 1c).
//
// This example runs the full scheduler lineup, then demonstrates the
// hardware side of the co-design: the FP16 hardware engine reproduces the
// float64 Dysta scheduling decisions with a cycle budget that is a
// vanishing fraction of the workload.
//
//	go run ./examples/mobile_assistant
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sparsedysta/internal/core"
	"sparsedysta/internal/hwsched"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func main() {
	scenario := workload.MultiAttNN()
	profiling, evaluation, err := workload.BuildStores(scenario, 100, 400, 3)
	if err != nil {
		log.Fatal(err)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}
	est := sched.NewEstimator(lut)

	requests, err := workload.Generate(scenario, evaluation, workload.GenConfig{
		Requests: 1000, RatePerSec: 30, SLOMultiplier: 10, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mobile personal assistant: BERT QA + BART/GPT-2 translation on Sanger")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheduler\tANTT\tviol%\tpreemptions")
	for _, s := range []sched.Scheduler{
		sched.NewFCFS(),
		sched.NewSJF(est),
		sched.NewPREMA(est),
		sched.NewPlanaria(est),
		core.NewWithoutSparse(lut),
		core.NewDefault(lut),
	} {
		r, err := sched.Run(s, requests, sched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\t%d\n",
			r.Scheduler, r.ANTT, 100*r.ViolationRate, r.Preemptions)
	}
	tw.Flush()

	// The hardware engine: same scheduling algorithm, FP16 datapath,
	// cycle-accounted.
	engine, err := hwsched.NewEngine(core.DefaultConfig(), lut, hwsched.FP16, 64)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sched.Run(engine, requests, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	overhead := engine.OverheadSeconds(200e6)
	fmt.Println()
	fmt.Printf("FP16 hardware engine: ANTT %.2f, violations %.1f%% (vs float64 reference above)\n",
		r.ANTT, 100*r.ViolationRate)
	fmt.Printf("scheduler hardware time: %.3f ms over a %.1f s workload (%.5f%%), %d invocations\n",
		overhead*1e3, r.Makespan.Seconds(), 100*overhead/r.Makespan.Seconds(), engine.Invocations())
	fmt.Printf("resource footprint: %+v\n", hwsched.Estimate(hwsched.OptFP16(64)))
}
