// Work stealing on a heterogeneous node whose router has gone stale:
// the walkthrough for the migration subsystem.
//
// The setup deliberately stacks the deck against the dispatch layer — a
// lopsided cluster (one double-speed engine carrying half the capacity,
// two half-speed stragglers) behind a sparsity-aware router whose view
// of engine state lags by a full 100ms. Every arrival inside a stale
// window chases the snapshot, whole bursts pile onto whichever engine
// looked emptiest, and before migration a misrouted request was simply
// stuck. Three acts:
//
//  1. The damage: exact vs 100ms-stale signals, no migration — the
//     violation rate multiplies while the hardware sits half idle.
//
//  2. The repair: work stealing (idle engines pull from the longest
//     normalized backlog) and predicted-SLO shedding at several
//     rebalance intervals, with win/loss accounting showing whether
//     each moved request's 200µs transfer penalty paid off.
//
//  3. The price of moving: sweeping the migration cost until stealing
//     stops being worth it — rebalancing decisions must weigh
//     data-dependent transfer cost, not just queue lengths.
//
//     go run ./examples/work_stealing
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"sparsedysta/internal/cluster"
	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func main() {
	scenario := workload.MultiAttNN()
	profiling, evaluation, err := workload.BuildStores(scenario, 60, 250, 13)
	if err != nil {
		log.Fatal(err)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}
	est := sched.NewEstimator(lut)
	load := cluster.SparsityAwareLoad(lut, est)

	// One double-speed engine, one reference, two half-speed: total
	// capacity 4 reference engines, but capacity concentrated enough
	// that misrouting one burst hurts.
	specs := []cluster.EngineSpec{
		{LatencyScale: 0.5}, {LatencyScale: 1}, {LatencyScale: 2}, {LatencyScale: 2},
	}
	const stale = 100 * time.Millisecond
	mean, err := workload.MeanIsolated(scenario, evaluation)
	if err != nil {
		log.Fatal(err)
	}
	rate := 4 * 0.9 / mean.Seconds()
	requests, err := workload.Generate(scenario, evaluation, workload.GenConfig{
		Requests: 2000, RatePerSec: rate, SLOMultiplier: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hetero node: 1 double-speed + 1 reference + 2 half-speed engines (capacity 4)\n")
	fmt.Printf("%.0f req/s (~90%% utilization), router snapshots %v stale\n\n", rate, stale)

	newDysta := func(int) sched.Scheduler { return core.NewDefault(lut) }
	run := func(cfg cluster.Config) cluster.Result {
		cfg.Specs = specs
		cfg.Dispatch = cluster.NewLeastLoad("sparse-load", load)
		res, err := cluster.Run(newDysta, requests, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Act 1: what staleness costs without migration.
	fmt.Println("1) the damage: stale signals, nobody moves:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "signals\tviol%\tANTT\timbalance")
	exact := run(cluster.Config{})
	stuck := run(cluster.Config{SignalInterval: stale})
	for _, row := range []struct {
		name string
		res  cluster.Result
	}{{"exact", exact}, {stale.String() + " stale", stuck}} {
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.3f\n",
			row.name, 100*row.res.ViolationRate, row.res.ANTT, row.res.Imbalance)
	}
	tw.Flush()
	gap := stuck.ViolationRate - exact.ViolationRate

	// Act 2: migration policies against the same stale router.
	fmt.Println("\n2) the repair: migration under stale signals (cost 200µs):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rebalance\tinterval\tmigrations\twin/loss\tviol%\tgap recovered")
	for _, p := range []struct {
		policy   cluster.RebalancePolicy
		interval time.Duration
	}{
		{cluster.Steal{Load: load}, 500 * time.Microsecond},
		{cluster.Steal{Load: load}, 2 * time.Millisecond},
		{cluster.Steal{Load: load}, 10 * time.Millisecond},
		{cluster.Shed{Load: load}, 2 * time.Millisecond},
	} {
		res := run(cluster.Config{
			SignalInterval:    stale,
			Rebalance:         p.policy,
			RebalanceInterval: p.interval,
			MigrationCost:     200 * time.Microsecond,
		})
		recovered := 0.0
		if gap > 0 {
			recovered = 100 * (stuck.ViolationRate - res.ViolationRate) / gap
		}
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d/%d\t%.1f\t%.0f%%\n",
			res.Rebalance, p.interval, res.Migrations,
			res.MigrationWins, res.MigrationLosses,
			100*res.ViolationRate, recovered)
	}
	tw.Flush()

	// Act 3: how expensive may a move get before stealing stops paying?
	fmt.Println("\n3) the price of moving: steal every 2ms at rising migration cost:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cost\tmigrations\twin/loss\tviol%")
	for _, cost := range []time.Duration{
		0, 200 * time.Microsecond, 2 * time.Millisecond, 20 * time.Millisecond,
	} {
		res := run(cluster.Config{
			SignalInterval:    stale,
			Rebalance:         cluster.Steal{Load: load},
			RebalanceInterval: 2 * time.Millisecond,
			MigrationCost:     cost,
		})
		fmt.Fprintf(tw, "%v\t%d\t%d/%d\t%.1f\n",
			cost, res.Migrations, res.MigrationWins, res.MigrationLosses,
			100*res.ViolationRate)
	}
	tw.Flush()
}
