// Custom benchmark: the full public-benchmark workflow of the paper's
// artifact (Appendix A), end to end through the library API:
//
//  1. define a scenario as a shareable JSON spec (here: a robotics stack
//     with tight-SLO hand detection and best-effort classification);
//
//  2. run Phase 1 (hardware simulation) and persist the runtime
//     information as CSV files, as the paper's hw_simulator does;
//
//  3. reload the CSVs, build the scheduler LUTs from them, and run
//     Phase 2 under Dysta;
//
//  4. export per-request outcomes for external analysis and draw the
//     schedule of the busiest second.
//
//     go run ./examples/custom_benchmark
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"sparsedysta/internal/core"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/workload"
)

func main() {
	// 1. The scenario spec, as it would live in a versioned JSON file.
	specJSON := `{
	  "name": "robotics-perception",
	  "accelerator": "eyeriss-v2",
	  "entries": [
	    {"model": "ssd", "pattern": "random", "weight_rate": 0.8, "weight": 2, "slo_factor": 0.5},
	    {"model": "resnet50", "pattern": "nm", "weight_rate": 0.75, "weight": 1, "slo_factor": 2.0}
	  ]
	}`
	scenario, err := workload.LoadSpec(bytes.NewReader([]byte(specJSON)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %d entries on %s\n",
		scenario.Name, len(scenario.Entries), scenario.Accel.Name())

	// 2. Phase 1: simulate the dataset and persist runtime info per
	//    model-pattern pair (in-memory buffers stand in for files here).
	files := map[trace.Key]*bytes.Buffer{}
	profiling := trace.NewStore()
	for i, e := range scenario.Entries {
		traces, err := trace.Build(scenario.Accel, trace.BuildConfig{
			Model: e.Model, Pattern: e.Pattern, WeightRate: e.WeightRate,
			Samples: 150, Seed: uint64(i) + 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		profiling.Add(e.Key(), traces[:50]) // offline profiling split
		buf := &bytes.Buffer{}
		if err := trace.WriteCSV(buf, e.Key(), traces[50:]); err != nil {
			log.Fatal(err)
		}
		files[e.Key()] = buf
		fmt.Printf("  phase 1: %v -> %d samples (%d KB of runtime info)\n",
			e.Key(), len(traces), buf.Len()/1024)
	}

	// 3. Phase 2: reload the saved runtime info and schedule against it.
	evaluation := trace.NewStore()
	for _, buf := range files {
		key, traces, err := trace.ReadCSV(buf)
		if err != nil {
			log.Fatal(err)
		}
		evaluation.Add(key, traces)
	}
	lut, err := trace.NewStatsSet(profiling)
	if err != nil {
		log.Fatal(err)
	}
	mean, err := workload.MeanIsolated(scenario, evaluation)
	if err != nil {
		log.Fatal(err)
	}
	requests, err := workload.Generate(scenario, evaluation, workload.GenConfig{
		Requests:      400,
		RatePerSec:    0.85 / mean.Seconds(),
		SLOMultiplier: 8,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := sched.Run(core.NewDefault(lut), requests,
		sched.Options{RecordTasks: true, RecordTimeline: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nphase 2 under %s: ANTT %.2f, violations %.1f%%, %d preemptions\n",
		result.Scheduler, result.ANTT, 100*result.ViolationRate, result.Preemptions)
	for name, m := range result.PerModel {
		fmt.Printf("  %-9s %3d requests  ANTT %6.2f  violations %5.1f%%\n",
			name, m.Requests, m.ANTT, 100*m.ViolationRate)
	}

	// 4. Outcome export + a schedule snapshot.
	var outcomes bytes.Buffer
	if err := sched.WriteOutcomesCSV(&outcomes, result.Tasks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noutcome CSV: %d bytes for %d requests (first line: %.60s...)\n",
		outcomes.Len(), len(result.Tasks), outcomes.String())

	fmt.Printf("\nschedule of the first %d spans:\n", min(12, len(result.Timeline.Spans)))
	tl := &sched.Timeline{Spans: result.Timeline.Spans[:min(12, len(result.Timeline.Spans))]}
	fmt.Print(tl.Gantt(60))
	fmt.Printf("context switches across the run: %d over %v busy\n",
		result.Timeline.Switches(), result.Timeline.Busy().Round(time.Millisecond))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
