module sparsedysta

go 1.24
