// Package sparsedysta's root benchmark suite: one testing.B benchmark per
// paper table and figure (regenerating the artefact end to end at the
// quick protocol), plus micro-benchmarks of the core machinery. The
// experiment index lives in DESIGN.md §4; `go run ./cmd/dysta-bench` is
// the interactive front end with the paper-scale protocol.
package sparsedysta

import (
	"testing"
	"time"

	"sparsedysta/internal/accel"
	"sparsedysta/internal/cluster"
	"sparsedysta/internal/core"
	"sparsedysta/internal/exp"
	"sparsedysta/internal/models"
	"sparsedysta/internal/rng"
	"sparsedysta/internal/sched"
	"sparsedysta/internal/sparsity"
	"sparsedysta/internal/trace"
	"sparsedysta/internal/traffic"
	"sparsedysta/internal/workload"
)

// benchOpts is the protocol used by the per-experiment benchmarks: small
// enough that the full `go test -bench=.` pass stays in minutes.
func benchOpts() exp.Options {
	return exp.Options{
		Seeds:          1,
		Requests:       200,
		ProfileSamples: 30,
		EvalSamples:    100,
		DatasetSamples: 400,
	}
}

// runExp executes one registered experiment b.N times.
func runExp(b *testing.B, id string) {
	b.Helper()
	runner, err := exp.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artefact (DESIGN.md §4).

func BenchmarkFig2(b *testing.B)   { runExp(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { runExp(b, "fig3") }
func BenchmarkTable2(b *testing.B) { runExp(b, "table2") }
func BenchmarkFig4(b *testing.B)   { runExp(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { runExp(b, "fig5") }
func BenchmarkFig9(b *testing.B)   { runExp(b, "fig9") }
func BenchmarkTable4(b *testing.B) { runExp(b, "table4") }
func BenchmarkTable5(b *testing.B) { runExp(b, "table5") }
func BenchmarkFig12(b *testing.B)  { runExp(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExp(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runExp(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExp(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { runExp(b, "fig16") }
func BenchmarkTable6(b *testing.B) { runExp(b, "table6") }

// Micro-benchmarks of the machinery behind the experiments.

// benchWorkload builds a reusable AttNN pipeline + request stream once.
func benchWorkload(b *testing.B) (*trace.StatsSet, []*workload.Request) {
	b.Helper()
	sc := workload.MultiAttNN()
	prof, eval, err := workload.BuildStores(sc, 30, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	lut, err := trace.NewStatsSet(prof)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.Generate(sc, eval, workload.GenConfig{
		Requests: 500, RatePerSec: 30, SLOMultiplier: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return lut, reqs
}

// BenchmarkEngineSJF measures the discrete-event engine's end-to-end
// throughput under a cheap scheduler (500 requests per iteration).
func BenchmarkEngineSJF(b *testing.B) {
	lut, reqs := benchWorkload(b)
	est := sched.NewEstimator(lut)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(sched.NewSJF(est), reqs, sched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineDysta measures the engine under the full Dysta scheduler
// (per-layer predictor updates + full queue re-scoring).
func BenchmarkEngineDysta(b *testing.B) {
	lut, reqs := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(core.NewDefault(lut), reqs, sched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterDysta measures the multi-engine cluster simulation: the
// 500-request stream dispatched across 4 engines running Dysta behind the
// sparsity-aware least-predicted-load policy.
func BenchmarkClusterDysta(b *testing.B) {
	lut, reqs := benchWorkload(b)
	est := sched.NewEstimator(lut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cluster.NewLeastLoad("load", cluster.SparsityAwareLoad(lut, est)).
			WithCurve(cluster.SparsityAwareCurve(lut, est))
		if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) }, reqs,
			cluster.Config{Engines: 4, Dispatch: d}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterRoundRobin is the dispatch-cost baseline for
// BenchmarkClusterDysta: same engines, O(1) routing.
func BenchmarkClusterRoundRobin(b *testing.B) {
	lut, reqs := benchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) }, reqs,
			cluster.Config{Engines: 4, Dispatch: cluster.NewRoundRobin()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSteal measures the migration hot path: the 500-request
// stream on 4 engines behind stale load-aware dispatch with work
// stealing rebalancing every millisecond — the configuration that
// exercises Extract/Adopt, live view construction, and the drain-phase
// rebalance rounds on top of BenchmarkClusterDysta's baseline.
func BenchmarkClusterSteal(b *testing.B) {
	lut, reqs := benchWorkload(b)
	est := sched.NewEstimator(lut)
	load := cluster.SparsityAwareLoad(lut, est)
	curve := cluster.SparsityAwareCurve(lut, est)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cluster.NewLeastLoad("load", load).WithCurve(curve)
		if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) }, reqs,
			cluster.Config{
				Engines:           4,
				Dispatch:          d,
				SignalInterval:    20 * time.Millisecond,
				Rebalance:         cluster.Steal{Load: load, Curve: curve},
				RebalanceInterval: time.Millisecond,
				MigrationCost:     200 * time.Microsecond,
			}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterChurn measures the fault-injection hot path: the
// 500-request stream on 4 engines behind stale load-aware dispatch
// while engines fail and recover on a 2s-MTBF schedule — the
// configuration that exercises Crash/Restart, failover re-dispatch,
// redirect scans and sealed-incarnation aggregation on top of
// BenchmarkClusterDysta's baseline.
func BenchmarkClusterChurn(b *testing.B) {
	lut, reqs := benchWorkload(b)
	est := sched.NewEstimator(lut)
	load := cluster.SparsityAwareLoad(lut, est)
	plan, err := cluster.GenChurn(4, time.Minute, 2*time.Second, 150*time.Millisecond, 29)
	if err != nil {
		b.Fatal(err)
	}
	curve := cluster.SparsityAwareCurve(lut, est)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cluster.NewLeastLoad("load", load).WithCurve(curve)
		if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) }, reqs,
			cluster.Config{
				Engines:        4,
				Dispatch:       d,
				SignalInterval: 20 * time.Millisecond,
				Churn:          &plan,
				RetryMax:       4,
			}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterAutoscale measures the autoscaling hot path: a bursty
// (MMPP) 500-request stream on 4 engines behind stale load-aware
// dispatch with the SLO-derived autoscaler cycling the live set — the
// configuration that exercises per-refresh policy evaluation, drainNow/
// joinNow transitions and in-service span accounting on top of
// BenchmarkClusterDysta's baseline.
func BenchmarkClusterAutoscale(b *testing.B) {
	lut, _ := benchWorkload(b)
	est := sched.NewEstimator(lut)
	load := cluster.SparsityAwareLoad(lut, est)
	sc := workload.MultiAttNN()
	_, eval, err := workload.BuildStores(sc, 30, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.Generate(sc, eval, workload.GenConfig{
		Requests: 500, RatePerSec: 66, SLOMultiplier: 10, Seed: 1,
		Process: traffic.Bursty(66, 8, 0.2, 300*time.Millisecond)})
	if err != nil {
		b.Fatal(err)
	}
	pol := exp.NewAutoscaler(reqs, 1, 4, load)
	pol.Curve = cluster.SparsityAwareCurve(lut, est)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cluster.NewLeastLoad("load", load).WithCurve(pol.Curve)
		if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) }, reqs,
			cluster.Config{
				Engines:        4,
				Dispatch:       d,
				SignalInterval: 5 * time.Millisecond,
				Autoscale:      pol,
			}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterStream1M measures the streaming scale anchor: one
// million requests through 16 Dysta engines with lazy arrivals
// (workload.NewStream), bounded capture and the heap-backed pick path.
// The request slice is never materialized, so resident memory stays
// independent of request count; allocs/op is the number this benchmark
// exists to pin. 400 req/s (~83% of the 16-engine capacity) keeps the
// queues in steady state: at or past saturation they grow with the
// horizon and no capture mode can bound that.
func BenchmarkClusterStream1M(b *testing.B) {
	lut, _ := benchWorkload(b)
	est := sched.NewEstimator(lut)
	load := cluster.SparsityAwareLoad(lut, est)
	sc := workload.MultiAttNN()
	_, eval, err := workload.BuildStores(sc, 30, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.GenConfig{Requests: 1_000_000, RatePerSec: 400, SLOMultiplier: 10, Seed: 1}
	curve := cluster.SparsityAwareCurve(lut, est)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := workload.NewStream(sc, eval, cfg)
		if err != nil {
			b.Fatal(err)
		}
		d := cluster.NewLeastLoad("load", load).WithCurve(curve)
		res, err := cluster.RunStream(func(int) sched.Scheduler { return core.NewDefault(lut) },
			src, cluster.Config{
				Engines:  16,
				Dispatch: d,
				Sched:    sched.Options{BoundedCapture: true, ScalablePick: true},
			})
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != cfg.Requests {
			b.Fatalf("streamed %d of %d requests", res.Requests, cfg.Requests)
		}
	}
}

// BenchmarkSignalRefresh measures one SignalBoard.Refresh over 4 engines
// holding the full 500-request stream: the per-refresh cost every
// arrival-loop observation pays when the interval elapses. With the
// engines bound to the run's estimator this is the O(1) incremental sum
// per engine; the pre-incremental board paid an O(queue) scan here.
func BenchmarkSignalRefresh(b *testing.B) {
	lut, reqs := benchWorkload(b)
	est := sched.NewEstimator(lut)
	load := cluster.SparsityAwareLoad(lut, est)
	curve := cluster.SparsityAwareCurve(lut, est)
	engines := make([]*sched.Engine, 4)
	for i := range engines {
		engines[i] = sched.NewEngine(core.NewDefault(lut), sched.Options{
			BacklogEstimator: load, BacklogCurve: curve})
	}
	for i, r := range reqs {
		if err := engines[i%len(engines)].Inject(r, r.Arrival); err != nil {
			b.Fatal(err)
		}
	}
	board := cluster.NewSignalBoard(engines, 0, load)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		board.Refresh(time.Duration(i))
	}
}

// BenchmarkRebalanceViews measures the rebalancer's per-round cost —
// live view construction plus Steal planning — by running the steal
// configuration at a 100µs interval, an order of magnitude more rounds
// than BenchmarkClusterSteal: the run is dominated by views() and
// Steal.Plan, the two paths the reused scratch buffers serve.
func BenchmarkRebalanceViews(b *testing.B) {
	lut, reqs := benchWorkload(b)
	est := sched.NewEstimator(lut)
	load := cluster.SparsityAwareLoad(lut, est)
	curve := cluster.SparsityAwareCurve(lut, est)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cluster.NewLeastLoad("load", load).WithCurve(curve)
		if _, err := cluster.Run(func(int) sched.Scheduler { return core.NewDefault(lut) }, reqs,
			cluster.Config{
				Engines:           4,
				Dispatch:          d,
				SignalInterval:    20 * time.Millisecond,
				Rebalance:         cluster.Steal{Load: load, Curve: curve},
				RebalanceInterval: 100 * time.Microsecond,
				MigrationCost:     200 * time.Microsecond,
			}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleEngines regenerates the scale-engines experiment.
func BenchmarkScaleEngines(b *testing.B) { runExp(b, "scale-engines") }

// BenchmarkAutoscale regenerates the autoscale frontier experiment.
func BenchmarkAutoscale(b *testing.B) { runExp(b, "autoscale") }

// BenchmarkPredictor measures one Observe+Remaining predictor step.
func BenchmarkPredictor(b *testing.B) {
	sc := workload.MultiAttNN()
	prof, _, err := workload.BuildStores(sc, 30, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	lut, err := trace.NewStatsSet(prof)
	if err != nil {
		b.Fatal(err)
	}
	st := lut.MustLookup(trace.Key{Model: "bert", Pattern: sparsity.Dense})
	p := core.NewPredictor(core.DefaultConfig(), st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer := i % (st.NumLayers() - 1)
		p.Observe(layer, 0.9)
		_ = p.Remaining(layer + 1)
	}
}

// BenchmarkTraceBuild measures Phase 1 throughput: hardware-simulating
// one BERT sample (12 transformer blocks).
func BenchmarkTraceBuild(b *testing.B) {
	m := models.BERTBase()
	sc := workload.MultiAttNN()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Build(sc.Accel, trace.BuildConfig{
			Model: m, Samples: 1, Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaskGenerate measures weight-mask generation for a
// ResNet-50-scale convolution.
func BenchmarkMaskGenerate(b *testing.B) {
	r := rng.New(1)
	cfg := sparsity.MaskConfig{Cin: 512, Cout: 512, KH: 3, KW: 3, Rate: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparsity.Generate(r, sparsity.RandomPointwise, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGenerate measures request-stream sampling.
func BenchmarkWorkloadGenerate(b *testing.B) {
	sc := workload.MultiAttNN()
	_, eval, err := workload.BuildStores(sc, 10, 100, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(sc, eval, workload.GenConfig{
			Requests: 1000, RatePerSec: 30, SLOMultiplier: 10, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLayerLatency measures one analytical Eyeriss-V2 layer
// evaluation.
func BenchmarkLayerLatency(b *testing.B) {
	sc := workload.MultiCNN()
	l := models.ResNet50().Layers[10]
	sp := accel.LayerSparsity{
		Pattern:            sparsity.RandomPointwise,
		WeightRate:         0.8,
		ActivationSparsity: 0.45,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sc.Accel.LayerLatency(l, sp)
	}
}

// Ablation benches (DESIGN.md §5 design-choice studies).

func BenchmarkAblationBeta(b *testing.B)     { runExp(b, "ablation-beta") }
func BenchmarkAblationEta(b *testing.B)      { runExp(b, "ablation-eta") }
func BenchmarkAblationStrategy(b *testing.B) { runExp(b, "ablation-strategy") }
func BenchmarkAblationPenalty(b *testing.B)  { runExp(b, "ablation-penalty") }
func BenchmarkAblationDemotion(b *testing.B) { runExp(b, "ablation-demotion") }
func BenchmarkAblationOverhead(b *testing.B) { runExp(b, "ablation-overhead") }
func BenchmarkAblationFIFO(b *testing.B)     { runExp(b, "ablation-fifo") }
func BenchmarkAblationGLB(b *testing.B)      { runExp(b, "ablation-glb") }
